// Cross-query work sharing at service scale (DESIGN.md "Cross-query work
// sharing"): a 10,000-node mesh hosts 64 co-resident queries drawn from 16
// templates (4 identical tenants each — 75% of the population duplicates
// another query's placed pairs), run once per tree mode on its own medium:
//
//   kPerSource  every query evaluates its own placements and builds its
//               own distribution trees — the unshared reference.
//   kShared     identical placements are claimed once (one evaluation,
//               fanned out to all subscribers) and overlapping destination
//               sets resolve to one interned Steiner tree.
//
// Acceptance gates (the bench exits non-zero on any failure):
//   - per-query result counts under kShared are identical to kPerSource —
//     sharing changes traffic, never answers;
//   - the settled-tail traffic rate under kShared is >= 30% below the
//     per-source reference;
//   - the shared-mode steady tail allocates nothing (same exemption as
//     bench_service_churn: one slab step per shard);
//   - with ASPEN_STATS_OUT set, a deterministic digest covering both modes
//     for the shards {1,4} x pipeline-depth {1,2,3} determinism matrix.
//
// `--smoke` shrinks the mesh and population for CI.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/alloc_audit.h"
#include "bench/bench_util.h"
#include "join/executor.h"
#include "join/medium.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace aspen {
namespace {

struct ModeRun {
  std::vector<uint64_t> results;  ///< per-query, admission order
  uint64_t total_bytes = 0;
  double tail_bytes_per_cycle = 0;
  uint64_t tail_allocs = 0;
  uint64_t traffic_fingerprint = 0;
  double settle_s = 0;
  double tail_s = 0;
};

ModeRun RunMode(const net::Topology& topo,
                const std::vector<workload::Workload>& templates,
                common::TreeMode mode, int copies, int settle_cycles,
                int tail_cycles, int shards, int pipeline) {
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  join::ExecutorOptions eopts;
  eopts.algorithm = join::Algorithm::kInnet;
  eopts.features = join::InnetFeatures::Cm();
  eopts.assumed = sel;
  eopts.mesh_mode = true;
  eopts.knobs.tree_mode = mode;
  join::MediumOptions mopts;
  mopts.knobs.shards = shards;
  mopts.knobs.pipeline_depth = pipeline;
  mopts.knobs.tree_mode = mode;

  join::SharedMedium medium(&topo, {}, mopts);
  std::vector<join::JoinExecutor*> execs;
  // Admission order interleaves templates (t0 c0, t1 c0, ..., t0 c1, ...)
  // so each template's first tenant owns and later copies subscribe.
  for (int c = 0; c < copies; ++c) {
    for (const auto& wl : templates) {
      execs.push_back(benchutil::OrDie(medium.TryAddQuery(&wl, eopts)));
    }
  }
  benchutil::OrDie(medium.InitiateAll());

  auto t0 = std::chrono::steady_clock::now();
  benchutil::OrDie(medium.RunCycles(settle_cycles));
  auto t1 = std::chrono::steady_clock::now();

  const uint64_t bytes_before_tail = medium.stats().TotalBytesSent();
  allocaudit::ResetCount();
  allocaudit::SetCounting(true);
  auto t2 = std::chrono::steady_clock::now();
  benchutil::OrDie(medium.RunCycles(tail_cycles));
  auto t3 = std::chrono::steady_clock::now();
  allocaudit::SetCounting(false);

  ModeRun out;
  out.tail_allocs = allocaudit::Count();
  out.total_bytes = medium.stats().TotalBytesSent();
  out.tail_bytes_per_cycle =
      static_cast<double>(out.total_bytes - bytes_before_tail) / tail_cycles;
  out.traffic_fingerprint = benchutil::TrafficFingerprint(medium.stats());
  out.settle_s = std::chrono::duration<double>(t1 - t0).count();
  out.tail_s = std::chrono::duration<double>(t3 - t2).count();
  out.results.reserve(execs.size());
  for (const join::JoinExecutor* e : execs) out.results.push_back(e->results());
  if (mode == common::TreeMode::kShared &&
      medium.num_shared_placements() == 0) {
    std::fprintf(stderr, "GATE FAIL: shared mode claimed no placements\n");
    std::exit(1);
  }
  return out;
}

int Main(int argc, char** argv) {
  const bool smoke = benchutil::ConsumeSmokeFlag(&argc, argv);

  // Full run: 10k nodes, 16 templates x 4 copies = 64 co-resident queries.
  // The settle phase covers several 25-cycle re-estimation bursts so the
  // payload pools reach their in-flight peak before the audited tail.
  const int grid_side = smoke ? 40 : 100;
  const int num_templates = smoke ? 4 : 16;
  const int copies = smoke ? 2 : 4;
  const int num_pairs = smoke ? 20 : 60;
  const int settle_cycles = smoke ? 10 : 110;
  const int tail_cycles = benchutil::CyclesFromEnv(smoke ? 10 : 60);
  const int shards = benchutil::ShardsFromEnv();
  const int pipeline = benchutil::PipelineFromEnv();

  benchutil::PrintHeader(
      "bench_service_sharing",
      "64 co-resident queries, shared vs per-source trees and placements");

  auto topo = benchutil::OrDie(
      net::Topology::Grid(grid_side, grid_side, 25.6 * grid_side));
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  std::vector<workload::Workload> templates;
  templates.reserve(num_templates);
  for (int i = 0; i < num_templates; ++i) {
    templates.push_back(benchutil::OrDie(workload::Workload::MakeQuery0(
        &topo, sel, num_pairs, /*window=*/3, /*seed=*/100 + i)));
  }

  ModeRun per_source =
      RunMode(topo, templates, common::TreeMode::kPerSource, copies,
              settle_cycles, tail_cycles, shards, pipeline);
  ModeRun shared =
      RunMode(topo, templates, common::TreeMode::kShared, copies,
              settle_cycles, tail_cycles, shards, pipeline);

  // ---- gates ----------------------------------------------------------------
  int failures = 0;
  int result_failures = 0;
  for (size_t i = 0; i < per_source.results.size(); ++i) {
    if (shared.results[i] != per_source.results[i]) {
      std::fprintf(stderr,
                   "GATE FAIL: query %zu results diverge: shared %llu != "
                   "per-source %llu\n",
                   i, static_cast<unsigned long long>(shared.results[i]),
                   static_cast<unsigned long long>(per_source.results[i]));
      ++result_failures;
    }
  }
  failures += result_failures;
  const double reduction =
      1.0 - shared.tail_bytes_per_cycle / per_source.tail_bytes_per_cycle;
  if (reduction < 0.30) {
    std::fprintf(stderr,
                 "GATE FAIL: shared-mode tail traffic only %.1f%% below "
                 "per-source (need >= 30%%)\n",
                 100.0 * reduction);
    ++failures;
  }
  const uint64_t alloc_bound = shards > 1 ? shards : 0;
  if (shared.tail_allocs > alloc_bound) {
    std::fprintf(stderr,
                 "GATE FAIL: shared steady tail allocated (%llu allocs over "
                 "%d cycles; bound %llu)\n",
                 static_cast<unsigned long long>(shared.tail_allocs),
                 tail_cycles, static_cast<unsigned long long>(alloc_bound));
    ++failures;
  }

  uint64_t total_results = 0;
  for (uint64_t r : shared.results) total_results += r;
  std::printf("nodes                 %d\n", topo.num_nodes());
  std::printf("queries               %zu (%d templates x %d copies)\n",
              per_source.results.size(), num_templates, copies);
  std::printf("shards / pipeline     %d / %d\n", shards, pipeline);
  std::printf("cycles                %d settle + %d tail, per mode\n",
              settle_cycles, tail_cycles);
  std::printf("results per mode      %llu (identical per query: %s)\n",
              static_cast<unsigned long long>(total_results),
              result_failures == 0 ? "yes" : "NO");
  std::printf("tail traffic          per-source %.0f B/cycle, shared %.0f "
              "B/cycle (-%.1f%%)\n",
              per_source.tail_bytes_per_cycle, shared.tail_bytes_per_cycle,
              100.0 * reduction);
  std::printf("tail allocs           per-source %llu, shared %llu\n",
              static_cast<unsigned long long>(per_source.tail_allocs),
              static_cast<unsigned long long>(shared.tail_allocs));
  std::printf("wall time             per-source %.2f s, shared %.2f s\n",
              per_source.settle_s + per_source.tail_s,
              shared.settle_s + shared.tail_s);
  std::printf("sharing gate          %s\n", failures == 0 ? "PASS" : "FAIL");

  benchutil::JsonReport report("BENCH_service_sharing.json");
  report.Add("service_sharing", "nodes", topo.num_nodes());
  report.Add("service_sharing", "queries",
             static_cast<double>(per_source.results.size()));
  report.Add("service_sharing", "shards", shards);
  report.Add("service_sharing", "pipeline_depth", pipeline);
  report.Add("service_sharing", "per_source_tail_bytes_per_cycle",
             per_source.tail_bytes_per_cycle);
  report.Add("service_sharing", "shared_tail_bytes_per_cycle",
             shared.tail_bytes_per_cycle);
  report.Add("service_sharing", "traffic_reduction_pct", 100.0 * reduction);
  report.Add("service_sharing", "shared_tail_allocs",
             static_cast<double>(shared.tail_allocs));
  report.Add("service_sharing", "total_results",
             static_cast<double>(total_results));
  report.Write();

  // Deterministic digest across the shards x pipeline-depth matrix: both
  // modes' per-query results and traffic fingerprints (timing excluded).
  benchutil::DeterminismLog det;
  if (det.enabled()) {
    det.Add("nodes", topo.num_nodes());
    det.Add("queries", per_source.results.size());
    det.Add("per_source_bytes", per_source.total_bytes);
    det.Add("per_source_fingerprint", per_source.traffic_fingerprint);
    det.Add("shared_bytes", shared.total_bytes);
    det.Add("shared_fingerprint", shared.traffic_fingerprint);
    for (size_t i = 0; i < shared.results.size(); ++i) {
      det.Add("q" + std::to_string(i) + "_results", shared.results[i]);
    }
    if (!det.Write()) return 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace aspen

int main(int argc, char** argv) { return aspen::Main(argc, argv); }
