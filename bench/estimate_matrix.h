// The "true selectivities x optimizer estimates" matrices of Figures 4, 8,
// 10 and 11: data is generated with one sigma_s:sigma_t ratio (rows) while
// the optimizer is given another (columns). The diagonal holds the correctly
// informed runs and should be the cheapest entry of each row.

#ifndef ASPEN_BENCH_ESTIMATE_MATRIX_H_
#define ASPEN_BENCH_ESTIMATE_MATRIX_H_

#include <functional>

#include "bench/bench_util.h"

namespace aspen {
namespace benchutil {

using TrueFactory = std::function<Result<workload::Workload>(
    const workload::SelectivityParams& true_params, uint64_t seed)>;

/// Runs the matrix for one algorithm and prints a table: one row per true
/// ratio, one column per assumed ratio; cells are mean total traffic. When
/// `learning` is true the executor adapts online (Figures 10/11); the
/// diagonal is tagged with '*'.
inline void RunEstimateMatrix(const TrueFactory& factory,
                              const AlgoSpec& algo, double sigma_st,
                              int cycles, bool learning) {
  const int runs = RunsFromEnv(3);
  std::vector<std::string> headers{"true \\ assumed"};
  for (const auto& a : Ratios()) headers.push_back(a.label);
  core::Table table(headers);
  for (const auto& true_ratio : Ratios()) {
    workload::SelectivityParams truth{true_ratio.sigma_s, true_ratio.sigma_t,
                                      sigma_st};
    std::vector<std::string> row{true_ratio.label};
    for (const auto& assumed_ratio : Ratios()) {
      workload::SelectivityParams assumed{assumed_ratio.sigma_s,
                                          assumed_ratio.sigma_t, sigma_st};
      auto opts = MakeOptions(algo, assumed);
      opts.learning = learning;
      auto agg = OrDie(core::RunAveraged(
          [&](uint64_t seed) { return factory(truth, seed); }, opts, cycles,
          runs));
      std::string cell = core::HumanBytes(agg.total_bytes);
      if (&true_ratio == &assumed_ratio ||
          true_ratio.label == std::string(assumed_ratio.label)) {
        cell += " *";
      }
      row.push_back(cell);
    }
    table.AddRow(row);
  }
  std::printf("%s, sigma_st=%.0f%%, %d cycles, learning %s, %d runs\n",
              algo.Name().c_str(), sigma_st * 100, cycles,
              learning ? "ON" : "OFF", runs);
  table.Print();
}

}  // namespace benchutil
}  // namespace aspen

#endif  // ASPEN_BENCH_ESTIMATE_MATRIX_H_
