// The ratio x join-selectivity traffic sweep shared by Figures 2, 3, 19
// and 20: for each sigma_s:sigma_t stage and each sigma_st, run every
// algorithm and report total traffic and base-station load.

#ifndef ASPEN_BENCH_RATIO_SWEEP_H_
#define ASPEN_BENCH_RATIO_SWEEP_H_

#include <functional>

#include "bench/bench_util.h"

namespace aspen {
namespace benchutil {

using SweepFactory = std::function<Result<workload::Workload>(
    const workload::SelectivityParams& params, uint64_t seed)>;

/// Runs the Figure 2/3-style sweep and prints two tables (total traffic,
/// base-station load). In mesh mode the unit is messages (Appendix F);
/// otherwise bytes.
inline void RunRatioSweep(const SweepFactory& factory, int cycles, bool mesh) {
  const int runs = RunsFromEnv();
  const auto algos = Figure2Algos();

  std::vector<std::string> headers{"sigma_s:sigma_t", "sigma_st"};
  for (const auto& a : algos) {
    headers.push_back(mesh && a.algo == join::Algorithm::kGht ? "DHT"
                                                              : a.Name());
  }
  core::Table total(headers);
  core::Table base(headers);

  for (const auto& ratio : Ratios()) {
    for (const auto& js : JoinSels()) {
      workload::SelectivityParams params{ratio.sigma_s, ratio.sigma_t,
                                         js.value};
      std::vector<std::string> total_row{ratio.label, js.label};
      std::vector<std::string> base_row{ratio.label, js.label};
      for (const auto& algo : algos) {
        auto wl_factory = [&](uint64_t seed) { return factory(params, seed); };
        auto agg = OrDie(core::RunAveraged(
            wl_factory, MakeOptions(algo, params, mesh), cycles, runs));
        if (mesh) {
          total_row.push_back(core::Fixed(agg.total_messages / 1000.0, 2) +
                              "k msgs");
          base_row.push_back(core::Fixed(agg.base_messages / 1000.0, 2) +
                             "k msgs");
        } else {
          total_row.push_back(core::HumanBytes(agg.total_bytes));
          base_row.push_back(core::HumanBytes(agg.base_bytes));
        }
      }
      total.AddRow(total_row);
      base.AddRow(base_row);
    }
  }
  std::printf("(a) Total traffic, %d sampling cycles, averaged over %d runs\n",
              cycles, runs);
  total.Print();
  std::printf("\n(b) Load on the base station\n");
  base.Print();
}

}  // namespace benchutil
}  // namespace aspen

#endif  // ASPEN_BENCH_RATIO_SWEEP_H_
