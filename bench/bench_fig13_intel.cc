// Figure 13: learning on the Intel-lab-like dataset — Query 3 (region join,
// Dst < 5m, |s.v - t.v| > 1000) on the 54-node lab layout. "Innet learn" is
// initiated with the worst-case estimates sigma_s = sigma_t = sigma_st =
// 100% (placing every join at the base, identical to Naive/Base) and must
// migrate join nodes into the network as it learns; "Innet full knowledge"
// runs with the true parameters from the start. The paper's log-scale plot
// shows Yang+07 and GHT/GPSR orders of magnitude worse; Innet-learn lands
// within ~10% of full knowledge.

#include "bench/bench_util.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 13", "Query 3 on the Intel-like dataset (54 nodes)");
  net::Topology topo = net::Topology::IntelLab();
  const int cycles = CyclesFromEnv(2000);
  const int runs = RunsFromEnv(3);
  std::printf("%d sampling cycles, %d runs (paper: 65535 samples)\n", cycles,
              runs);

  const workload::SelectivityParams truth{1.0, 1.0, 0.2};
  const workload::SelectivityParams naive_est{1.0, 1.0, 1.0};

  struct Row {
    const char* label;
    AlgoSpec spec;
    workload::SelectivityParams assumed;
    bool learn;
  };
  const Row rows[] = {
      {"Yang+07", {join::Algorithm::kYang07, {}}, truth, false},
      {"GHT/GPSR", {join::Algorithm::kGht, {}}, truth, false},
      {"Naive", {join::Algorithm::kNaive, {}}, truth, false},
      {"Base", {join::Algorithm::kBase, {}}, truth, false},
      {"In-net (full knowledge)",
       {join::Algorithm::kInnet, join::InnetFeatures::Cmg()},
       truth,
       false},
      {"In-net learn",
       {join::Algorithm::kInnet, join::InnetFeatures::Cmg()},
       naive_est,
       true},
  };

  core::Table table({"algorithm", "traffic at base", "max node traffic",
                     "total traffic", "migrations"});
  for (const auto& row : rows) {
    auto opts = MakeOptions(row.spec, row.assumed);
    opts.learning = row.learn;
    auto agg = OrDie(core::RunAveraged(
        [&](uint64_t seed) {
          return workload::Workload::MakeQuery3(&topo, /*window=*/1, seed);
        },
        opts, cycles, runs));
    table.AddRow({row.label, core::HumanBytes(agg.base_bytes),
                  core::HumanBytes(agg.max_node_bytes),
                  core::HumanBytes(agg.total_bytes),
                  core::Fixed(agg.migrations, 1)});
  }
  table.Print();
  return 0;
}
