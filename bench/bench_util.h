// Shared infrastructure for the per-figure benchmark binaries.
//
// Every bench regenerates one table or figure from the paper's evaluation:
// same workloads, same parameter sweeps, same reported series. Repetitions
// default to 5 seeds (the paper used 9; override with ASPEN_BENCH_RUNS).

#ifndef ASPEN_BENCH_BENCH_UTIL_H_
#define ASPEN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/report.h"
#include "join/types.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace aspen {
namespace benchutil {

/// The five sigma_s : sigma_t ratio stages of Figures 2-4 and 8-11.
struct Ratio {
  double sigma_s;
  double sigma_t;
  const char* label;
};

inline const std::vector<Ratio>& Ratios() {
  static const std::vector<Ratio> kRatios = {
      {0.1, 1.0, "1/10:1"},       {1.0 / 6, 0.5, "1/6:1/2"},
      {0.5, 0.5, "1/2:1/2"},      {0.5, 1.0 / 6, "1/2:1/6"},
      {1.0, 0.1, "1:1/10"},
  };
  return kRatios;
}

/// The join-selectivity sweep of Figures 2-3 and 9(b).
struct JoinSel {
  double value;
  const char* label;
};

inline const std::vector<JoinSel>& JoinSels() {
  static const std::vector<JoinSel> kSels = {
      {0.2, "20%"}, {0.1, "10%"}, {0.05, "5%"}};
  return kSels;
}

/// One algorithm configuration as it appears in the paper's legends.
struct AlgoSpec {
  join::Algorithm algo;
  join::InnetFeatures features;
  std::string Name() const { return join::AlgorithmName(algo, features); }
};

/// The legend of Figures 2-3: Naive, Base, GHT, Innet, Innet-cmg,
/// Innet-cmpg.
inline std::vector<AlgoSpec> Figure2Algos() {
  return {
      {join::Algorithm::kNaive, {}},
      {join::Algorithm::kBase, {}},
      {join::Algorithm::kGht, {}},
      {join::Algorithm::kInnet, join::InnetFeatures::None()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmg()},
      {join::Algorithm::kInnet, join::InnetFeatures::Cmpg()},
  };
}

inline int RunsFromEnv(int default_runs = 5) {
  const char* env = std::getenv("ASPEN_BENCH_RUNS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return default_runs;
}

inline int CyclesFromEnv(int default_cycles) {
  const char* env = std::getenv("ASPEN_BENCH_CYCLES");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return default_cycles;
}

/// Shard count for every executor a bench builds (ASPEN_SHARDS, default 1).
/// The CI determinism gate runs each gated bench at ASPEN_SHARDS=1 and =4
/// and fails on any byte difference in the deterministic outputs.
inline int ShardsFromEnv() {
  const char* env = std::getenv("ASPEN_SHARDS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1;
}

/// Pipeline depth for every executor a bench builds (ASPEN_PIPELINE,
/// default 1 = no cross-cycle overlap). The determinism gate also sweeps
/// this knob: results are byte-identical for every depth.
inline int PipelineFromEnv() {
  const char* env = std::getenv("ASPEN_PIPELINE");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1;
}

/// Re-optimization interval for benches that exercise the continuous
/// re-optimization loop (ASPEN_REOPT, in sampling cycles; default 0 =
/// disabled, the historical frozen-placement behavior).
inline int ReoptFromEnv() {
  const char* env = std::getenv("ASPEN_REOPT");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 0;
}

/// Multicast tree policy (ASPEN_TREE_MODE: "shared" | "per_source",
/// default per_source). The determinism gate also sweeps this knob:
/// shared-mode runs are byte-identical across shards and pipeline depth,
/// just against their own shared baseline.
inline common::TreeMode TreeModeFromEnv() {
  const char* env = std::getenv("ASPEN_TREE_MODE");
  if (env != nullptr && std::strcmp(env, "shared") == 0) {
    return common::TreeMode::kShared;
  }
  return common::TreeMode::kPerSource;
}

/// The one place bench binaries resolve the run-shape environment:
/// ASPEN_SHARDS, ASPEN_PIPELINE, ASPEN_REOPT and ASPEN_TREE_MODE compose
/// into the RunKnobs every ExecutorOptions / MediumOptions embeds.
inline common::RunKnobs KnobsFromEnv() {
  common::RunKnobs knobs;
  knobs.shards = ShardsFromEnv();
  knobs.pipeline_depth = PipelineFromEnv();
  knobs.reopt_interval = ReoptFromEnv();
  knobs.tree_mode = TreeModeFromEnv();
  return knobs;
}

inline join::ExecutorOptions MakeOptions(
    const AlgoSpec& spec, const workload::SelectivityParams& assumed,
    bool mesh = false) {
  join::ExecutorOptions opts;
  opts.algorithm = spec.algo;
  opts.features = spec.features;
  opts.assumed = assumed;
  opts.mesh_mode = mesh;
  opts.knobs = KnobsFromEnv();
  return opts;
}

/// The paper's standard 100-node, ~7-neighbor evaluation topology.
inline net::Topology PaperTopology(uint64_t seed = 42) {
  auto topo = net::Topology::Random(100, 7.0, seed);
  if (!topo.ok()) {
    std::fprintf(stderr, "fatal: %s\n", topo.status().ToString().c_str());
    std::abort();
  }
  return std::move(*topo);
}

/// Dies on error — bench binaries have no graceful recovery path.
template <typename T>
T OrDie(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "fatal: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).ValueOrDie();
}

inline void OrDie(Status s) {
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::abort();
  }
}

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("==============================================================\n");
}

// ---- machine-readable bench output ------------------------------------------
//
// Perf-trajectory plumbing: benches emit a flat JSON file
// (BENCH_<name>.json) of {bench: {metric: value}} so future changes can be
// compared against committed numbers without scraping console output.
// Typical metrics: cycles_per_sec, ns_per_cycle, bytes, allocs_per_cycle.

/// \brief Collects named numeric metrics and writes them as JSON.
///
/// With `merge` set, an existing report at `path` (in this class's own
/// format) is loaded first, so several bench invocations — e.g. one CI
/// matrix run per (shards, pipeline) configuration — accumulate into one
/// file instead of clobbering each other. Add() replaces the value of a
/// metric that is already present, keeping re-runs idempotent.
class JsonReport {
 public:
  explicit JsonReport(std::string path, bool merge = false)
      : path_(std::move(path)) {
    if (merge) LoadExisting();
  }

  void Add(const std::string& bench, const std::string& metric,
           double value) {
    for (auto& [name, metrics] : entries_) {
      if (name == bench) {
        for (auto& [key, old] : metrics) {
          if (key == metric) {
            old = value;
            return;
          }
        }
        metrics.emplace_back(metric, value);
        return;
      }
    }
    entries_.push_back({bench, {{metric, value}}});
  }

  /// Writes the collected metrics; returns false (and warns) on I/O error.
  bool Write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  \"%s\": {", entries_[i].name.c_str());
      const auto& metrics = entries_[i].metrics;
      for (size_t j = 0; j < metrics.size(); ++j) {
        std::fprintf(f, "%s\"%s\": %.6g", j == 0 ? "" : ", ",
                     metrics[j].first.c_str(), metrics[j].second);
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path_.c_str());
    return true;
  }

 private:
  struct Entry {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  /// Parses a prior Write()'s output back into entries_. Only this class's
  /// own flat {"bench": {"metric": value}} shape is understood; a missing
  /// or foreign file just leaves the report empty.
  void LoadExisting() {
    std::FILE* f = std::fopen(path_.c_str(), "r");
    if (f == nullptr) return;
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    size_t pos = 0;
    auto next_string = [&](std::string* out) {
      size_t open = text.find('"', pos);
      if (open == std::string::npos) return false;
      size_t close = text.find('"', open + 1);
      if (close == std::string::npos) return false;
      out->assign(text, open + 1, close - open - 1);
      pos = close + 1;
      return true;
    };
    std::string name;
    while (next_string(&name)) {
      size_t brace = text.find_first_not_of(": \t\n", pos);
      if (brace == std::string::npos || text[brace] != '{') break;
      pos = brace + 1;
      size_t end = text.find('}', pos);
      if (end == std::string::npos) break;
      std::string metric;
      while (pos < end && next_string(&metric) && pos < end) {
        size_t colon = text.find(':', pos);
        if (colon == std::string::npos || colon > end) break;
        Add(name, metric, std::strtod(text.c_str() + colon + 1, nullptr));
        pos = text.find_first_of(",}", colon + 1);
        if (pos == std::string::npos || text[pos] == '}') break;
      }
      pos = end + 1;
    }
  }

  std::string path_;
  std::vector<Entry> entries_;
};

// ---- determinism digest ------------------------------------------------------
//
// The CI determinism gate runs a bench at several shard counts and compares
// outputs byte for byte. Benches whose stdout contains timing write the
// deterministic subset of their results here instead: key=value lines to
// the file named by ASPEN_STATS_OUT (no-op when the variable is unset).

/// FNV-1a fingerprint of the complete per-node traffic table: any
/// divergence in any node's counters changes the digest.
inline uint64_t TrafficFingerprint(const net::TrafficStats& s) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (net::NodeId id = 0; id < s.num_nodes(); ++id) {
    const net::NodeTraffic& t = s.node(id);
    mix(t.bytes_sent);
    mix(t.bytes_received);
    mix(t.messages_sent);
    mix(t.messages_received);
  }
  return h;
}

/// \brief key=value lines of deterministic run quantities.
class DeterminismLog {
 public:
  DeterminismLog() {
    const char* env = std::getenv("ASPEN_STATS_OUT");
    if (env != nullptr) path_ = env;
  }

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& key, uint64_t value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    lines_ += key + "=" + buf + "\n";
  }

  /// Doubles are logged as raw bit patterns: the gate checks bit equality,
  /// not approximate equality.
  void AddDoubleBits(const std::string& key, double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
    std::memcpy(&bits, &value, sizeof(bits));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    lines_ += key + "=0x" + buf + "\n";
  }

  bool Write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "DeterminismLog: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fputs(lines_.c_str(), f);
    std::fclose(f);
    return true;
  }

 private:
  std::string path_;
  std::string lines_;
};

/// \brief Strips `--smoke` from argv; returns true when it was present.
/// Smoke mode is a CI-facing fast pass: benches shrink their workloads so a
/// full run finishes in seconds while still exercising every code path.
inline bool ConsumeSmokeFlag(int* argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return smoke;
}

}  // namespace benchutil
}  // namespace aspen

#endif  // ASPEN_BENCH_BENCH_UTIL_H_
