// Figure 2: Query 1 (uniform m:n join), w = 3, 100 sampling cycles, 100
// nodes — total traffic and base-station load across five sigma_s:sigma_t
// stages x sigma_st in {20%, 10%, 5%} for Naive, Base, GHT, Innet,
// Innet-cmg, Innet-cmpg.

#include "bench/bench_util.h"
#include "bench/ratio_sweep.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 2", "Query 1, w=3, 100 nodes, mote network (bytes)");
  net::Topology topo = PaperTopology();
  RunRatioSweep(
      [&](const workload::SelectivityParams& p, uint64_t seed) {
        return workload::Workload::MakeQuery1(&topo, p, /*window=*/3, seed);
      },
      CyclesFromEnv(100), /*mesh=*/false);
  return 0;
}
