// Appendix G: mobile nodes. A leaf node of the medium random topology moves
// and re-attaches under a new parent; the summary structures of all its
// (old and new) ancestors in every routing tree must refresh. We measure
// the propagation traffic and the update delay in transmission cycles,
// averaged over candidate leaves. The paper reports ~19.4 cycles and ~1.2KB
// per move, supporting ~0.5 m/s mobility with 10m radio range.

#include "bench/bench_util.h"
#include "routing/multi_tree.h"
#include "routing/summary.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Appendix G", "Mobile leaf re-attachment cost");
  const int runs = RunsFromEnv(3);
  double total_bytes = 0, total_cycles = 0;
  int moves = 0;
  for (int r = 0; r < runs; ++r) {
    net::Topology topo =
        OrDie(net::Topology::Make(net::TopologyKind::kMediumRandom, 100,
                                  55 + r));
    routing::MultiTreeOptions opts;
    routing::MultiTree multi(&topo, opts);
    // Candidate mobile nodes: leaves in every tree (the paper constrains
    // mobile nodes to be topology leaves).
    for (net::NodeId u = 1; u < topo.num_nodes(); ++u) {
      bool leaf_everywhere = true;
      for (int t = 0; t < multi.num_trees(); ++t) {
        if (!multi.tree(t).ChildrenOf(u).empty()) leaf_everywhere = false;
      }
      if (!leaf_everywhere) continue;
      // Moving re-parents u in each tree: the summaries of the old ancestor
      // chain and the new ancestor chain must both refresh (one summary
      // message per ancestor edge), plus a beacon exchange at attach time.
      const int summary_bytes =
          routing::BloomSummary().SizeBytes() +
          net::WireFormat::kLinkHeaderBytes;
      int64_t bytes = 0;
      int cycles = 0;
      for (int t = 0; t < multi.num_trees(); ++t) {
        int depth = multi.tree(t).DepthOf(u);
        // Old chain invalidation + new chain propagation; the new parent is
        // a neighbor, so its depth differs by at most one.
        bytes += static_cast<int64_t>(summary_bytes) * (2 * depth);
        bytes += net::WireFormat::kLinkHeaderBytes + 6;  // attach beacon
        cycles = std::max(cycles, 2 * depth);
      }
      total_bytes += static_cast<double>(bytes);
      total_cycles += cycles;
      ++moves;
    }
  }
  if (moves == 0) {
    std::printf("no all-tree leaves found\n");
    return 1;
  }
  core::Table table({"metric", "mean per move"});
  table.AddRow({"update traffic", core::HumanBytes(total_bytes / moves)});
  table.AddRow({"propagation delay (tx cycles)",
                core::Fixed(total_cycles / moves, 1)});
  table.AddRow({"moves measured", std::to_string(moves)});
  table.Print();
  std::printf(
      "\nWith 10m radio range this supports ~10m per %.0f cycles of "
      "continuous connectivity.\n",
      total_cycles / moves);
  return 0;
}
