// Figure 14: effects of join-node failure. A single-pair query runs with
// sigma_st in {10%, 20%}; as a baseline the run proceeds unfailed, then the
// in-network join node is killed 45-55% into the run (averaged over
// offsets). The producers detect the dead node when their transmissions
// exhaust retries, fail over to the base, and forward their last w tuples
// so the window is reconstructed. Delay rises by a few cycles; traffic
// afterwards behaves like joining at the base.
//
// The failure is scripted through the scenario engine (a DynamicsSchedule
// replayed by a ScenarioDriver on the executor's own scheduler) rather than
// by splitting the run around a manual FailNode call.

#include "bench/bench_util.h"
#include "join/executor.h"
#include "scenario/dynamics.h"

using namespace aspen;
using namespace aspen::benchutil;

namespace {

struct Outcome {
  double delay = 0;
  double traffic_kb = 0;
  double results = 0;
};

Outcome RunOnce(const net::Topology& topo, double sigma_st, bool fail,
                double fail_frac, uint64_t seed) {
  workload::SelectivityParams sel{1.0, 1.0, sigma_st};
  auto wl = OrDie(workload::Workload::MakeQuery0(&topo, sel, /*num_pairs=*/1,
                                                 /*window=*/1, seed));
  // Optimize with a low assumed join selectivity so the join node is placed
  // in-network (the configuration the failure experiment studies).
  workload::SelectivityParams assumed{1.0, 1.0, 0.02};
  join::ExecutorOptions opts = MakeOptions(
      {join::Algorithm::kInnet, join::InnetFeatures::None()}, assumed);
  join::JoinExecutor exec(&wl, opts);
  if (!exec.Initiate().ok()) std::abort();
  const int cycles = 100;
  int fail_at = static_cast<int>(cycles * fail_frac);
  // Kill the in-network join node (known after placement) mid-run.
  scenario::DynamicsSchedule schedule;
  if (fail) {
    for (const auto& pl : exec.placements()) {
      if (!pl.at_base && pl.join_node != pl.pair.s &&
          pl.join_node != pl.pair.t) {
        schedule.FailAt(fail_at, pl.join_node);
      }
    }
  }
  scenario::ScenarioDriver driver(&exec.network(), &schedule);
  exec.scheduler()->AttachFront(&driver);
  (void)exec.RunCycles(cycles);
  auto stats = exec.Stats();
  Outcome out;
  // The paper plots worst-case result delay around the failure window.
  out.delay = stats.max_result_delay_cycles;
  out.traffic_kb = stats.total_bytes / 1024.0;
  out.results = static_cast<double>(stats.results);
  return out;
}

}  // namespace

int main() {
  PrintHeader("Figure 14", "Join-node failure: delay and traffic");
  const int runs = RunsFromEnv();
  core::Table table({"sigma_st", "scenario", "max delay (cycles)",
                     "total traffic (KB)", "results"});
  for (double sigma_st : {0.10, 0.20}) {
    for (bool fail : {false, true}) {
      Outcome acc;
      int n = 0;
      for (int r = 0; r < runs; ++r) {
        // Vary the failure time 45%..55% into the run (the paper averages
        // over these offsets).
        for (double frac : {0.45, 0.50, 0.55}) {
          net::Topology topo = PaperTopology(42 + r);
          Outcome o = RunOnce(topo, sigma_st, fail, frac, 7 + r);
          acc.delay += o.delay;
          acc.traffic_kb += o.traffic_kb;
          acc.results += o.results;
          ++n;
          if (!fail) break;  // baseline has no offset dimension
        }
      }
      table.AddRow({core::Fixed(sigma_st * 100, 0) + "%",
                    fail ? "With failures" : "No failures",
                    core::Fixed(acc.delay / n, 1),
                    core::Fixed(acc.traffic_kb / n, 1),
                    core::Fixed(acc.results / n, 0)});
    }
  }
  table.Print();
  return 0;
}
