// Continuous re-optimization vs frozen placements under a mid-run workload
// shift (the paper's Section 6 trigger closed at runtime).
//
// The producers start at sigma_s:sigma_t = 1/10:1 and swap to 1:1/10
// mid-run — the placements chosen at initiation become exactly wrong. The
// frozen run (reopt_interval=0, the historical behavior) keeps paying the
// misplaced routing forever; the re-optimizing run detects the divergence
// past the paper's 33% threshold, replans, and migrates each pair's window
// state through the three-phase protocol. The headline gate: the settled
// tail after the shift must cost the re-optimizing run strictly less data
// traffic per cycle than the frozen run, and the migrated steady state must
// stay zero-allocation (migration cycles themselves are exempt — they are
// paid once, inside the adaptation window).
//
// Both runs deliver identical result counts: migration moves state, never
// drops or duplicates it.
//
// Output: console summary + BENCH_reopt.json (tail bytes/cycle for both
// configurations, migration counts) for the perf trajectory, plus the
// ASPEN_STATS_OUT determinism digest the CI shard/pipeline gate diffs.
//
// `--smoke` shrinks the run for CI (same topology, shorter phases).

#include <cstdlib>

#include "bench/alloc_audit.h"
#include "bench/bench_util.h"
#include "core/engine.h"
#include "join/executor.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace aspen {
namespace {

constexpr workload::SelectivityParams kBefore{0.1, 1.0, 0.2};
constexpr workload::SelectivityParams kAfter{1.0, 0.1, 0.2};

struct Phases {
  int pre;     // cycles before the shift (shift fires at cycle `pre`)
  int adapt;   // adaptation window: divergence, replan, migration
  int tail;    // measured settled block after adaptation
};

struct RunOutcome {
  uint64_t tail_bytes = 0;
  uint64_t tail_allocs = 0;
  uint64_t exempt_allocs = 0;
  int exempt_cycles = 0;
  uint64_t total_bytes = 0;
  uint64_t results = 0;
  join::RunStats stats;
  uint64_t tail_planned = 0;
  uint64_t fingerprint = 0;
};

RunOutcome RunOne(const net::Topology& topo, const Phases& ph,
                  int reopt_interval) {
  auto wl =
      benchutil::OrDie(workload::Workload::MakeQuery1(&topo, kBefore, 3, 7));
  wl.SetGlobalSwitch(ph.pre, kAfter);

  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::None();  // ungrouped: planned protocol
  opts.assumed = kBefore;
  opts.seed = 42;
  opts.knobs = benchutil::KnobsFromEnv();
  opts.knobs.reopt_interval = reopt_interval;

  join::JoinExecutor exec(&wl, opts);
  Status st = exec.Initiate();
  if (st.ok()) st = exec.RunCycles(ph.pre + ph.adapt);
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    std::abort();
  }

  RunOutcome out;
  const uint64_t planned_before = exec.Stats().planned_migrations;
  const uint64_t bytes_before = exec.network().stats().TotalBytesSent();
  // Per-cycle audit: steady-state cycles must not allocate, but the
  // re-optimization loop never formally quiesces — estimator noise can
  // cross the 33%% trigger again long after the shift — so cycles inside a
  // three-phase migration (announce, transfer, completion) are exempt.
  // Those pay interned-route and protocol bookkeeping once, by design.
  // planned() ticks at the announce cycle — the first of the three
  // protocol cycles — so a 3-cycle exemption window starting there covers
  // announce, transfer and completion. migrations() additionally catches
  // instant relocations (failover, grouped MPO moves).
  uint64_t last_planned = exec.reopt().planned();
  uint64_t last_migr = exec.migrations();
  int exempt = 0;
  for (int c = 0; c < ph.tail; ++c) {
    const uint64_t a0 = allocaudit::Count();
    st = exec.RunCycles(1);
    if (!st.ok()) {
      std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
      std::abort();
    }
    const uint64_t d = allocaudit::Count() - a0;
    if (exec.reopt().planned() != last_planned ||
        exec.migrations() != last_migr) {
      exempt = 3;  // announce + transfer + completion cycles
      last_planned = exec.reopt().planned();
      last_migr = exec.migrations();
    }
    if (exempt > 0) {
      --exempt;
      out.exempt_allocs += d;
      ++out.exempt_cycles;
    } else {
      out.tail_allocs += d;
    }
  }
  out.tail_bytes = exec.network().stats().TotalBytesSent() - bytes_before;
  out.total_bytes = exec.network().stats().TotalBytesSent();
  out.results = exec.results();
  out.stats = exec.Stats();
  out.tail_planned = out.stats.planned_migrations - planned_before;
  out.fingerprint = benchutil::TrafficFingerprint(exec.network().stats());
  return out;
}

int Main(int argc, char** argv) {
  allocaudit::SetCounting(true);
  const bool smoke = benchutil::ConsumeSmokeFlag(&argc, argv);
  Phases ph;
  ph.pre = smoke ? 30 : 60;
  ph.adapt = smoke ? 60 : 120;
  ph.tail = benchutil::CyclesFromEnv(smoke ? 40 : 200);
  const int interval = []() {
    int v = benchutil::ReoptFromEnv();
    return v > 0 ? v : 10;
  }();

  benchutil::PrintHeader(
      "bench_reopt",
      "continuous re-optimization vs frozen placements under a rate shift");

  auto topo = benchutil::PaperTopology();
  RunOutcome frozen = RunOne(topo, ph, /*reopt_interval=*/0);
  RunOutcome reopt = RunOne(topo, ph, interval);

  const common::RunKnobs knobs = benchutil::KnobsFromEnv();
  const double frozen_per_cycle =
      static_cast<double>(frozen.tail_bytes) / ph.tail;
  const double reopt_per_cycle =
      static_cast<double>(reopt.tail_bytes) / ph.tail;

  std::printf("nodes                 %d\n", topo.num_nodes());
  std::printf("shards                %d\n", knobs.shards);
  std::printf("pipeline depth        %d\n", knobs.pipeline_depth);
  std::printf("reopt interval        %d cycles (33%% divergence trigger)\n",
              interval);
  std::printf("shift                 cycle %d: sigma %.2f:%.2f -> %.2f:%.2f\n",
              ph.pre, kBefore.sigma_s, kBefore.sigma_t, kAfter.sigma_s,
              kAfter.sigma_t);
  std::printf("measured tail         %d cycles after a %d-cycle adaptation "
              "window\n",
              ph.tail, ph.adapt);
  std::printf("frozen tail traffic   %.1f bytes/cycle\n", frozen_per_cycle);
  std::printf("reopt tail traffic    %.1f bytes/cycle (%.1f%% of frozen)\n",
              reopt_per_cycle, 100.0 * reopt_per_cycle / frozen_per_cycle);
  std::printf("reopt passes          %llu\n",
              static_cast<unsigned long long>(reopt.stats.reopt_passes));
  std::printf("planned migrations    %llu\n",
              static_cast<unsigned long long>(
                  reopt.stats.planned_migrations));
  std::printf("results               frozen %llu, reopt %llu\n",
              static_cast<unsigned long long>(frozen.results),
              static_cast<unsigned long long>(reopt.results));
  std::printf("tail heap allocations frozen %llu, reopt %llu\n",
              static_cast<unsigned long long>(frozen.tail_allocs),
              static_cast<unsigned long long>(reopt.tail_allocs));
  std::printf("tail planned migr.    %llu (%d exempt cycles, %llu exempt "
              "allocs)\n",
              static_cast<unsigned long long>(reopt.tail_planned),
              reopt.exempt_cycles,
              static_cast<unsigned long long>(reopt.exempt_allocs));

  benchutil::JsonReport report("BENCH_reopt.json", /*merge=*/true);
  char config[64];
  std::snprintf(config, sizeof(config), "reopt_s%d_p%d", knobs.shards,
                knobs.pipeline_depth);
  for (const char* entry : {"reopt", static_cast<const char*>(config)}) {
    report.Add(entry, "shards", knobs.shards);
    report.Add(entry, "pipeline_depth", knobs.pipeline_depth);
    report.Add(entry, "frozen_tail_bytes_per_cycle", frozen_per_cycle);
    report.Add(entry, "reopt_tail_bytes_per_cycle", reopt_per_cycle);
    report.Add(entry, "tail_ratio", reopt_per_cycle / frozen_per_cycle);
    report.Add(entry, "reopt_passes",
               static_cast<double>(reopt.stats.reopt_passes));
    report.Add(entry, "planned_migrations",
               static_cast<double>(reopt.stats.planned_migrations));
    report.Add(entry, "reopt_tail_allocs",
               static_cast<double>(reopt.tail_allocs));
  }
  report.Write();

  // Deterministic subset for the CI shard/pipeline gate: every quantity
  // here must be byte-identical across ASPEN_SHARDS and ASPEN_PIPELINE.
  benchutil::DeterminismLog det;
  if (det.enabled()) {
    det.Add("frozen_results", frozen.results);
    det.Add("frozen_total_bytes", frozen.total_bytes);
    det.Add("frozen_fingerprint", frozen.fingerprint);
    det.Add("reopt_results", reopt.results);
    det.Add("reopt_total_bytes", reopt.total_bytes);
    det.Add("reopt_tail_bytes", reopt.tail_bytes);
    det.Add("reopt_fingerprint", reopt.fingerprint);
    det.Add("reopt_passes", reopt.stats.reopt_passes);
    det.Add("planned_migrations", reopt.stats.planned_migrations);
    det.Add("migrations", reopt.stats.migrations);
    if (!det.Write()) return 1;
  }

  // ---- hard gates -----------------------------------------------------------
  int rc = 0;
  if (reopt.stats.reopt_passes == 0 || reopt.stats.planned_migrations == 0) {
    std::fprintf(stderr,
                 "FAIL: the shift did not drive any planned migration "
                 "(passes=%llu, planned=%llu)\n",
                 static_cast<unsigned long long>(reopt.stats.reopt_passes),
                 static_cast<unsigned long long>(
                     reopt.stats.planned_migrations));
    rc = 1;
  }
  if (reopt_per_cycle >= frozen_per_cycle) {
    std::fprintf(stderr,
                 "FAIL: re-optimized tail (%.1f B/cycle) does not beat the "
                 "frozen tail (%.1f B/cycle)\n",
                 reopt_per_cycle, frozen_per_cycle);
    rc = 1;
  }
  if (reopt.results != frozen.results) {
    std::fprintf(stderr,
                 "FAIL: migration changed the result count (frozen %llu, "
                 "reopt %llu)\n",
                 static_cast<unsigned long long>(frozen.results),
                 static_cast<unsigned long long>(reopt.results));
    rc = 1;
  }
  // Post-migration steady state is held to the same zero-allocation bar as
  // every other settled data plane; only the migration cycles themselves
  // (inside the adaptation window, not measured here) may allocate.
  if (reopt.tail_allocs != 0 || frozen.tail_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: heap allocations in the settled tail (frozen %llu, "
                 "reopt %llu; expected 0)\n",
                 static_cast<unsigned long long>(frozen.tail_allocs),
                 static_cast<unsigned long long>(reopt.tail_allocs));
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace aspen

int main(int argc, char** argv) { return aspen::Main(argc, argv); }
