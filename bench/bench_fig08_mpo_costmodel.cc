// Figure 8: MPO cost-model validation with Innet-cmpg.
// (a) Query 1 (uniform non-1:1), sigma_st = 5%, w = 3.
// (b) Query 2 (perimeter), sigma_st = 10%, w = 1.
// Correct estimates (diagonal, '*') should produce the best plans; ballpark
// estimates stay reasonable while badly wrong ones get expensive.

#include "bench/bench_util.h"
#include "bench/estimate_matrix.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 8", "MPO cost-model validation, Innet-cmpg");
  net::Topology topo = PaperTopology();
  AlgoSpec cmpg{join::Algorithm::kInnet, join::InnetFeatures::Cmpg()};

  std::printf("\n(a) Query 1, sigma_st=5%%, w=3\n");
  RunEstimateMatrix(
      [&](const workload::SelectivityParams& truth, uint64_t seed) {
        return workload::Workload::MakeQuery1(&topo, truth, 3, seed);
      },
      cmpg, 0.05, CyclesFromEnv(100), /*learning=*/false);

  std::printf("\n(b) Query 2, sigma_st=10%%, w=1\n");
  RunEstimateMatrix(
      [&](const workload::SelectivityParams& truth, uint64_t seed) {
        return workload::Workload::MakeQuery2(&topo, truth, 1, seed);
      },
      cmpg, 0.10, CyclesFromEnv(100), /*learning=*/false);
  return 0;
}
