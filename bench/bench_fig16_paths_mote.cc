// Figure 16: path quality on 100-node mote networks — average path length
// and maximum node load for 1/2/3-tree routing vs GPSR vs the full
// connectivity graph, across the five deployment densities. The multi-tree
// substrate should clearly beat single-tree and GPSR routing and approach
// the full-graph bound.

#include "bench/bench_util.h"
#include "bench/path_quality.h"

using namespace aspen;
using namespace aspen::benchutil;

int main() {
  PrintHeader("Figure 16", "Path quality, 100-node mote network");
  const net::TopologyKind kinds[] = {
      net::TopologyKind::kDenseRandom, net::TopologyKind::kMediumRandom,
      net::TopologyKind::kModerateRandom, net::TopologyKind::kSparseRandom,
      net::TopologyKind::kGrid};
  core::Table len({"topology", "1 Tree", "2 Trees", "3 Trees", "GPSR",
                   "Full graph"});
  core::Table load({"topology", "1 Tree", "2 Trees", "3 Trees", "GPSR"});
  const int runs = RunsFromEnv(3);
  for (auto kind : kinds) {
    double l1 = 0, l2 = 0, l3 = 0, lg = 0, lf = 0;
    double m1 = 0, m2 = 0, m3 = 0, mg = 0;
    for (int r = 0; r < runs; ++r) {
      net::Topology topo = OrDie(net::Topology::Make(kind, 100, 31 + r));
      auto q1 = TreesQuality(topo, 1);
      auto q2 = TreesQuality(topo, 2);
      auto q3 = TreesQuality(topo, 3);
      auto qg = GpsrQuality(topo);
      auto qf = BfsQuality(topo);
      l1 += q1.avg_len; l2 += q2.avg_len; l3 += q3.avg_len;
      lg += qg.avg_len; lf += qf.avg_len;
      m1 += q1.max_load_kpaths; m2 += q2.max_load_kpaths;
      m3 += q3.max_load_kpaths; mg += qg.max_load_kpaths;
    }
    len.AddRow({net::TopologyKindName(kind), core::Fixed(l1 / runs, 2),
                core::Fixed(l2 / runs, 2), core::Fixed(l3 / runs, 2),
                core::Fixed(lg / runs, 2), core::Fixed(lf / runs, 2)});
    load.AddRow({net::TopologyKindName(kind), core::Fixed(m1 / runs, 2),
                 core::Fixed(m2 / runs, 2), core::Fixed(m3 / runs, 2),
                 core::Fixed(mg / runs, 2)});
  }
  std::printf("(a) Average path length (hops), all node pairs\n");
  len.Print();
  std::printf("\n(b) Max node load (1000s of paths)\n");
  load.Print();
  return 0;
}
