// Long-running query service under churn: a 10,000-node mesh executes a
// changing population of concurrent queries — hundreds of scripted
// arrivals and departures over a workload template pool — for thousands of
// sampling cycles, and must prove *bounded* data-plane footprint: route
// table and payload pools return to the resident-query baseline after
// every churn wave, and steady-state cycles allocate nothing.
//
// This is the service-mode acceptance harness (DESIGN.md "Query
// lifecycle") and doubles as the CI leak gate: the bench exits non-zero
// when route/multicast occupancy fails to return to the post-first-wave
// baseline, when occupancy grows monotonically across waves, or when the
// steady tail block (run after the last departure) touches the heap.
//
// Output: console summary + BENCH_service_churn.json. With
// ASPEN_STATS_OUT set, a deterministic digest for the shard 1-vs-4
// determinism gate (results, traffic fingerprint, occupancy trajectory —
// everything but timing and the per-shard frame slabs).
//
// `--smoke` shrinks the mesh and the churn horizon for CI.

#include <chrono>
#include <cstdlib>

#include "bench/alloc_audit.h"
#include "bench/bench_util.h"
#include "core/engine.h"
#include "join/medium.h"
#include "net/topology.h"
#include "scenario/dynamics.h"
#include "workload/workload.h"

namespace aspen {
namespace {

int Main(int argc, char** argv) {
  const bool smoke = benchutil::ConsumeSmokeFlag(&argc, argv);

  // Full run: 10k nodes, 10 waves x 10 queries (+2 residents) over ~2000
  // cycles. Smoke keeps the same structure on a smaller mesh and horizon.
  const int grid_side = smoke ? 40 : 100;
  const int waves = smoke ? 2 : 10;
  const int per_wave = smoke ? 3 : 10;
  const int wave_period = smoke ? 24 : 180;
  const int min_life = smoke ? 6 : 40;
  const int max_life = smoke ? 12 : 120;
  const int churn_start = smoke ? 10 : 40;
  const int num_pairs = smoke ? 40 : 200;
  const int settle_cycles = smoke ? 6 : 80;
  const int tail_cycles = benchutil::CyclesFromEnv(smoke ? 10 : 100);
  const int shards = benchutil::ShardsFromEnv();
  const int pipeline = benchutil::PipelineFromEnv();

  benchutil::PrintHeader(
      "bench_service_churn",
      "long-running mesh query service under arrival/departure churn");

  auto topo = benchutil::OrDie(
      net::Topology::Grid(grid_side, grid_side, 25.6 * grid_side));
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  // Template pool: three Query-0 instances with distinct pair sets.
  std::vector<workload::Workload> pool;
  pool.reserve(3);
  for (uint64_t seed : {7ULL, 8ULL, 9ULL}) {
    pool.push_back(benchutil::OrDie(workload::Workload::MakeQuery0(
        &topo, sel, num_pairs, /*window=*/3, seed)));
  }
  std::vector<const workload::Workload*> templates;
  for (const auto& wl : pool) templates.push_back(&wl);

  // Scripted churn: wave-structured arrivals/departures, plus two resident
  // queries (admitted up front, never departing) so the steady tail block
  // measures a *serving* medium, not an idle one.
  scenario::DynamicsSchedule::QueryChurnOptions churn;
  churn.start_cycle = churn_start;
  churn.waves = waves;
  churn.arrivals_per_wave = per_wave;
  churn.wave_period = wave_period;
  churn.min_lifetime = min_life;
  churn.max_lifetime = max_life;
  churn.num_templates = static_cast<int>(templates.size());
  churn.seed = 42;
  scenario::DynamicsSchedule schedule =
      scenario::DynamicsSchedule::QueryChurn(churn);
  const int resident_slot_base = waves * per_wave;
  scenario::DynamicsSchedule full;
  full.ArriveAt(0, resident_slot_base + 0, 0);
  full.ArriveAt(0, resident_slot_base + 1, 1);
  for (const auto& e : schedule.events()) full.Add(e);

  core::ServiceOptions opts;
  opts.executor.algorithm = join::Algorithm::kInnet;
  opts.executor.features = join::InnetFeatures::Cm();
  opts.executor.assumed = sel;
  opts.executor.mesh_mode = true;
  opts.medium.knobs.shards = shards;
  opts.medium.knobs.pipeline_depth = pipeline;
  // ASPEN_TREE_MODE=shared runs the whole churn scenario with shared
  // Steiner trees and cross-query placement sharing, so every departure
  // wave exercises owner hand-off (DetachShared promotion) under the
  // same leak and determinism gates.
  opts.executor.knobs.tree_mode = benchutil::TreeModeFromEnv();
  opts.medium.knobs.tree_mode = opts.executor.knobs.tree_mode;
  opts.dynamics = &full;

  auto runner =
      benchutil::OrDie(core::ServiceRunner::Create(templates, opts));

  const int churn_horizon = churn_start + waves * wave_period;
  auto t0 = std::chrono::steady_clock::now();
  Status st = runner->Run(churn_horizon + settle_cycles);
  auto t1 = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    return 1;
  }

  // Steady tail: every churned query has departed; only the two residents
  // are serving. These cycles must not touch the heap.
  allocaudit::ResetCount();
  allocaudit::SetCounting(true);
  auto t2 = std::chrono::steady_clock::now();
  st = runner->Run(tail_cycles);
  auto t3 = std::chrono::steady_clock::now();
  allocaudit::SetCounting(false);
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    return 1;
  }
  const uint64_t tail_allocs = allocaudit::Count();

  core::ServiceStats stats = runner->Finalize();
  const double churn_s = std::chrono::duration<double>(t1 - t0).count();
  const double tail_s = std::chrono::duration<double>(t3 - t2).count();
  const double tail_cycles_per_sec = tail_cycles / tail_s;

  // ---- occupancy gates ------------------------------------------------------
  // Pre-arrival checkpoints: samples 0..1 are the residents; churn wave w
  // (0-based) contributes samples [2 + w*per_wave, 2 + (w+1)*per_wave).
  // The checkpoint before wave w+1's first arrival is the steady state
  // after wave w fully drained; the last sample is the post-run state.
  int failures = 0;
  const auto& occ = stats.occupancy;
  const size_t base_idx = 2 + static_cast<size_t>(per_wave);  // after wave 0
  if (occ.size() < base_idx + 1) {
    std::fprintf(stderr, "GATE FAIL: missing occupancy samples (%zu)\n",
                 occ.size());
    return 1;
  }
  const auto& base = occ[base_idx];
  const auto& fin = occ.back();
  if (fin.routes_live != base.routes_live ||
      fin.mcasts_live != base.mcasts_live) {
    std::fprintf(stderr,
                 "GATE FAIL: steady-state route occupancy %zu+%zu != "
                 "post-first-wave baseline %zu+%zu (leak)\n",
                 fin.routes_live, fin.mcasts_live, base.routes_live,
                 base.mcasts_live);
    ++failures;
  }
  // Monotonic-growth leak check across wave baselines.
  bool routes_grew = true;
  bool capacity_grew = true;
  for (int w = 2; w < waves; ++w) {
    const auto& prev = occ[2 + static_cast<size_t>(w - 1) * per_wave];
    const auto& cur = occ[2 + static_cast<size_t>(w) * per_wave];
    if (cur.routes_live <= prev.routes_live) routes_grew = false;
    if (cur.payload_capacity <= prev.payload_capacity) capacity_grew = false;
  }
  if (waves > 2 && (routes_grew || capacity_grew)) {
    std::fprintf(stderr,
                 "GATE FAIL: %s grows monotonically across churn waves\n",
                 routes_grew ? "route occupancy" : "payload capacity");
    ++failures;
  }
  const uint64_t alloc_bound = shards > 1 ? shards : 0;
  if (tail_allocs > alloc_bound) {
    std::fprintf(stderr,
                 "GATE FAIL: steady tail allocated (%llu allocs over %d "
                 "cycles; bound %llu)\n",
                 static_cast<unsigned long long>(tail_allocs), tail_cycles,
                 static_cast<unsigned long long>(alloc_bound));
    ++failures;
  }

  std::printf("nodes                 %d\n", topo.num_nodes());
  std::printf("shards                %d\n", shards);
  std::printf("pipeline depth        %d\n", pipeline);
  std::printf("cycles                %d (churn+settle) + %d steady tail\n",
              churn_horizon + settle_cycles, tail_cycles);
  std::printf("query events          %d arrivals, %d departures "
              "(%d resident)\n",
              stats.arrivals, stats.departures, stats.resident_queries);
  std::printf("results delivered     %llu\n",
              static_cast<unsigned long long>(stats.total_results));
  std::printf("churn phase           %.2f s\n", churn_s);
  std::printf("steady throughput     %.1f cycles/s (%.2f ms/cycle)\n",
              tail_cycles_per_sec, 1e3 * tail_s / tail_cycles);
  std::printf("route occupancy       peak %zu live, steady %zu "
              "(baseline %zu)\n",
              stats.peak_routes_live, fin.routes_live, base.routes_live);
  std::printf("payload pools         %zu live / %zu slots at end\n",
              fin.payload_live, fin.payload_capacity);
  std::printf("frame slab            %zu slots\n", fin.frame_capacity);
  std::printf("steady-tail allocs    %llu\n",
              static_cast<unsigned long long>(tail_allocs));
  std::printf("leak gate             %s\n", failures == 0 ? "PASS" : "FAIL");

  benchutil::JsonReport report("BENCH_service_churn.json");
  report.Add("service_churn", "nodes", topo.num_nodes());
  report.Add("service_churn", "shards", shards);
  report.Add("service_churn", "pipeline_depth", pipeline);
  report.Add("service_churn", "arrivals", stats.arrivals);
  report.Add("service_churn", "departures", stats.departures);
  report.Add("service_churn", "steady_cycles_per_sec", tail_cycles_per_sec);
  report.Add("service_churn", "tail_allocs",
             static_cast<double>(tail_allocs));
  report.Add("service_churn", "peak_routes_live",
             static_cast<double>(stats.peak_routes_live));
  report.Add("service_churn", "steady_routes_live",
             static_cast<double>(fin.routes_live));
  report.Add("service_churn", "payload_capacity",
             static_cast<double>(fin.payload_capacity));
  report.Add("service_churn", "total_results",
             static_cast<double>(stats.total_results));
  report.Write();

  // Deterministic digest for the shard 1-vs-4 gate. Frame-slab capacity is
  // per-shard (partition-dependent) and timing is wall-clock; everything
  // else must be byte-identical across shard counts.
  benchutil::DeterminismLog det;
  if (det.enabled()) {
    det.Add("nodes", topo.num_nodes());
    det.Add("arrivals", stats.arrivals);
    det.Add("departures", stats.departures);
    det.Add("results", stats.total_results);
    det.Add("total_bytes", stats.total_bytes);
    det.Add("total_messages", stats.total_messages);
    det.Add("traffic_fingerprint",
            benchutil::TrafficFingerprint(runner->medium().stats()));
    det.Add("peak_routes_live", stats.peak_routes_live);
    for (size_t i = 0; i < occ.size(); ++i) {
      const auto& s = occ[i];
      const std::string key = "occ" + std::to_string(i);
      det.Add(key + "_cycle", static_cast<uint64_t>(s.cycle));
      det.Add(key + "_routes", s.routes_live);
      det.Add(key + "_mcasts", s.mcasts_live);
      det.Add(key + "_payload_live", s.payload_live);
      det.Add(key + "_payload_cap", s.payload_capacity);
    }
    uint64_t ledger_results = 0;
    for (const auto& rec : stats.ledger) ledger_results += rec.stats.results;
    det.Add("ledger_entries", stats.ledger.size());
    det.Add("ledger_results", ledger_results);
    if (!det.Write()) return 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace aspen

int main(int argc, char** argv) { return aspen::Main(argc, argv); }
