// Figure 10: effect of learning under wrong initial estimates. For Queries
// 0-2 (200 sampling cycles, Innet-cmpg), data runs with each true
// sigma_s:sigma_t ratio while initiation is optimized for each assumed
// ratio; each cell reports traffic without learning -> with learning. Under
// wrong estimates learning should show large gains; on the diagonal a small
// loss (learning overhead) is expected.

#include "bench/bench_util.h"
#include "bench/estimate_matrix.h"

using namespace aspen;
using namespace aspen::benchutil;

namespace {

void GainLossMatrix(const TrueFactory& factory, double sigma_st, int window,
                    int cycles) {
  const int runs = RunsFromEnv(3);
  AlgoSpec cmpg{join::Algorithm::kInnet, join::InnetFeatures::Cmpg()};
  std::vector<std::string> headers{"true \\ assumed"};
  for (const auto& a : Ratios()) headers.push_back(a.label);
  core::Table table(headers);
  (void)window;
  for (const auto& true_ratio : Ratios()) {
    workload::SelectivityParams truth{true_ratio.sigma_s, true_ratio.sigma_t,
                                      sigma_st};
    std::vector<std::string> row{true_ratio.label};
    for (const auto& assumed_ratio : Ratios()) {
      workload::SelectivityParams assumed{assumed_ratio.sigma_s,
                                          assumed_ratio.sigma_t, sigma_st};
      auto wl_factory = [&](uint64_t seed) { return factory(truth, seed); };
      auto off_opts = MakeOptions(cmpg, assumed);
      auto on_opts = off_opts;
      on_opts.learning = true;
      auto off = OrDie(core::RunAveraged(wl_factory, off_opts, cycles, runs));
      auto on = OrDie(core::RunAveraged(wl_factory, on_opts, cycles, runs));
      double delta_pct =
          off.total_bytes > 0
              ? (off.total_bytes - on.total_bytes) / off.total_bytes * 100.0
              : 0.0;
      std::string cell = core::HumanBytes(off.total_bytes) + " -> " +
                         core::HumanBytes(on.total_bytes) + " (" +
                         (delta_pct >= 0 ? "+" : "") +
                         core::Fixed(delta_pct, 0) + "%)";
      row.push_back(cell);
    }
    table.AddRow(row);
  }
  std::printf("(gain%% = traffic saved by learning; %d cycles, %d runs)\n",
              cycles, runs);
  table.Print();
}

}  // namespace

int main() {
  PrintHeader("Figure 10", "Learning gain/loss under wrong estimates");
  net::Topology topo = PaperTopology();
  const int cycles = CyclesFromEnv(200);

  std::printf("\n(a) Query 0, sigma_st=20%%, w=3\n");
  GainLossMatrix(
      [&](const workload::SelectivityParams& t, uint64_t seed) {
        return workload::Workload::MakeQuery0(&topo, t, 25, 3, seed);
      },
      0.2, 3, cycles);

  std::printf("\n(b) Query 1, sigma_st=5%%, w=3\n");
  GainLossMatrix(
      [&](const workload::SelectivityParams& t, uint64_t seed) {
        return workload::Workload::MakeQuery1(&topo, t, 3, seed);
      },
      0.05, 3, cycles);

  std::printf("\n(c) Query 2, sigma_st=10%%, w=1\n");
  GainLossMatrix(
      [&](const workload::SelectivityParams& t, uint64_t seed) {
        return workload::Workload::MakeQuery2(&topo, t, 1, seed);
      },
      0.10, 1, cycles);
  return 0;
}
