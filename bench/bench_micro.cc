// Micro-benchmarks (google-benchmark): throughput of the substrate
// primitives — simulator stepping, multi-tree exploration, expression
// evaluation, cost-model placement, topology generation. These bound how
// large an experiment the harness can drive.

#include <benchmark/benchmark.h>

#include "join/executor.h"
#include "net/network.h"
#include "net/topology.h"
#include "opt/cost_model.h"
#include "query/analyzer.h"
#include "routing/multi_tree.h"
#include "workload/workload.h"

namespace aspen {
namespace {

const net::Topology& BenchTopology() {
  static const net::Topology topo = *net::Topology::Random(100, 7.0, 42);
  return topo;
}

void BM_NetworkStepWithTraffic(benchmark::State& state) {
  const net::Topology& topo = BenchTopology();
  routing::RoutingTree tree = routing::RoutingTree::Build(topo, 0);
  net::Network net(&topo, {});
  net.set_parent_resolver(&tree);
  for (auto _ : state) {
    for (net::NodeId u = 1; u < topo.num_nodes(); u += 4) {
      net::Message m;
      m.kind = net::MessageKind::kData;
      m.mode = net::RoutingMode::kTreeToRoot;
      m.origin = u;
      m.dest = 0;
      m.size_bytes = 8;
      benchmark::DoNotOptimize(net.Submit(std::move(m)));
    }
    net.StepUntilQuiet();
  }
  state.SetItemsProcessed(state.iterations() * (topo.num_nodes() / 4));
}
BENCHMARK(BM_NetworkStepWithTraffic);

void BM_MultiTreeExploration(benchmark::State& state) {
  const net::Topology& topo = BenchTopology();
  routing::MultiTreeOptions opts;
  opts.num_trees = static_cast<int>(state.range(0));
  routing::MultiTree multi(&topo, opts);
  routing::IndexedAttribute attr;
  attr.name = "a";
  attr.value_fn = [](net::NodeId id) { return (id * 7) % 12; };
  int idx = *multi.IndexAttribute(attr);
  int source = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(multi.FindMatches(source, idx, 3));
    source = (source + 13) % topo.num_nodes();
  }
}
BENCHMARK(BM_MultiTreeExploration)->Arg(1)->Arg(3);

void BM_ExprEval(benchmark::State& state) {
  using namespace query;
  auto e = Expr::And(
      Expr::Eq(Expr::Attr(Side::kS, kAttrX),
               Expr::Add(Expr::Attr(Side::kT, kAttrY), Expr::Const(5))),
      Expr::Eq(Expr::Mod(Expr::Hash(Expr::Attr(Side::kS, kAttrU)),
                         Expr::Const(2)),
               Expr::Const(0)));
  Tuple s = Schema::Sensor().MakeTuple();
  Tuple t = Schema::Sensor().MakeTuple();
  s[kAttrX] = 9;
  t[kAttrY] = 4;
  for (auto _ : state) {
    s[kAttrU] = (s[kAttrU] + 1) & 0x7;
    benchmark::DoNotOptimize(e->EvalBool(&s, &t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprEval);

void BM_PlaceOnPath(benchmark::State& state) {
  std::vector<net::NodeId> path(state.range(0));
  for (size_t i = 0; i < path.size(); ++i) path[i] = static_cast<int>(i);
  opt::PairCostInputs cost{0.5, 0.5, 0.2, 3};
  auto depth = [](net::NodeId id) { return static_cast<int>(id % 11); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::PlaceOnPath(cost, path, depth));
  }
}
BENCHMARK(BM_PlaceOnPath)->Arg(8)->Arg(32);

void BM_TopologyGeneration(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::Topology::Random(static_cast<int>(state.range(0)), 7.0, seed++));
  }
}
BENCHMARK(BM_TopologyGeneration)->Arg(100)->Arg(200);

void BM_FullExperimentCycle(benchmark::State& state) {
  const net::Topology& topo = BenchTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *workload::Workload::MakeQuery1(&topo, sel, 3, 7);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  join::JoinExecutor exec(&wl, opts);
  if (!exec.Initiate().ok()) state.SkipWithError("initiate failed");
  for (auto _ : state) {
    if (!exec.RunCycles(1).ok()) state.SkipWithError("run failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullExperimentCycle);

}  // namespace
}  // namespace aspen

BENCHMARK_MAIN();
