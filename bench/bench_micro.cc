// Micro-benchmarks (google-benchmark): throughput of the substrate
// primitives — simulator stepping, multi-tree exploration, expression
// evaluation, cost-model placement, topology generation. These bound how
// large an experiment the harness can drive.
//
// Before/after record for the sim-kernel + contiguous NodeState refactor
// (100-node Query 1, Innet-cmg, RelWithDebInfo, one core):
//
//   BM_FullExperimentCycle   map registries:      18778 ns/cycle (54.5k/s)
//                            NodeState table:     12934 ns/cycle (79.0k/s)
//   BM_NetworkStepWithTraffic                      9234 ns -> 8274 ns
//
// The per-cycle hot path (state lookup + pair dispatch) went from four
// map-of-pair lookups per producer to direct NodeId indexing plus small
// sorted-vector scans, a ~1.45x cycle-throughput improvement. RunAveraged
// additionally distributes repetitions over a thread pool
// (BM_RunAveraged/threads below; speedup tracks available cores).
//
// Before/after record for the Network::Step packet-grouping rework (same
// setup): the per-Step heap-allocated std::map<Key, vector<size_t>> was
// replaced by a reused sorted (key, index) scratch vector, preserving the
// map's iteration order bit for bit:
//
//   BM_NetworkStepWithTraffic  map grouping:       7180 ns
//                              sorted scratch:     4480 ns  (~1.6x)
//   BM_FullExperimentCycle                        12515 ns -> 12324 ns
//   BM_SharedMediumCycle       unchanged within noise (~56 us)
//
// Before/after record for the zero-allocation data plane (interned routes,
// pooled payloads/frames, POD message envelope; TrafficStats byte-identical,
// same RNG stream — verified against golden bench outputs). RelWithDebInfo,
// one core, --benchmark_min_time=1:
//
//   BM_FullExperimentCycle     shared_ptr+vectors: 11649 ns ( 87.0k cyc/s)
//                              zero-alloc plane:    7277 ns (139.0k cyc/s)  1.60x
//   BM_SharedMediumCycle                          55335 ns -> 38705 ns     1.43x
//   BM_NetworkStepWithTraffic                      3958 ns ->  3433 ns     1.15x
//   allocs per steady-state cycle: 0 after warm-up (asserted by
//   tests/allocation_test.cc; tracked here as allocs_per_cycle)
//
// bench_mesh_10k (10,000-node grid, Innet-cm, 500 pairs, 100 cycles):
//   before: 377 cycles/s, 4935 heap allocations per cycle
//   after:  482 cycles/s,  0.07 heap allocations per cycle
// Identical traffic (23.8 MB) and results (46880) on both sides.
//
// Before/after record for the grid-indexed topology generator (adjacency
// and Gabriel planarization answered from a uniform cell index instead of
// the all-pairs scans; neighbor lists byte-identical, same seeds):
//
//   BM_TopologyGeneration/100/70   18.5 ms ->  1.58 ms
//   BM_TopologyGeneration/200/70   92.7 ms ->  5.1  ms   (~18x)
//
// The index turned generation near-linear in n, so the suite now also
// tracks n=1000 at degree 7.0 and n=10000 at degree 13.0 — sizes the
// quadratic scans made impractical to benchmark per-run.
//
// Record for the pipelined cross-cycle scheduler (pipeline_depth knob:
// future cycles' pure sample stages overlap the current transmit).
// BM_SampleStage isolates the overlapped work (RelWithDebInfo, one core,
// --benchmark_min_time=1):
//
//   BM_SampleStage             420 ns/cycle, 0 allocs (100-node Query 1)
//   BM_FullExperimentCycle    8612 ns/cycle  -> the stage is ~5% of a
//                             100-node cycle; the fraction grows with node
//                             count (10k-node grid: sampling 500 pairs +
//                             filter evaluation per cycle)
//   bench_mesh_10k, 1 core:   ~450 cyc/s (p1) vs ~460 cyc/s (s1 p2) —
//                             within noise, as expected; s4 p2 drops to
//                             ~313 cyc/s (oversubscribed). Overlap needs a
//                             second core to pay off; see the CI multi-core
//                             matrix in BENCH_mesh_10k.json
//                             (mesh_10k_s<S>_p<P> entries).
//
// Before/after record for the PassFilters override path (per-node filter
// table): the inner loop resolved ParamsAt (optional probe) + FilterFor
// (linear cache scan) per sample; WarmFilterCache now tabulates one
// {mask_s, mask_t, domain} row per node — valid at every pre-switch cycle —
// and both paths accumulate verdicts block-wise into word-local registers
// (one store per 64 ids). Bit-identical (workload_test
// BatchSampleAndFiltersMatchScalarBitForBit). Release, one core,
// 10k-node grid, overrides on every 4th node, --benchmark_min_time=1:
//
//   BM_PassFiltersOverrides   per-sample resolve: 234352 ns ( 43.3M ids/s)
//                             node filter table:   47552 ns (214.7M ids/s)  4.9x

#include <atomic>
#include <cstdlib>
#include <new>

#include <benchmark/benchmark.h>

#include "common/phase.h"
#include "bench/bench_util.h"
#include "core/engine.h"
#include "join/executor.h"
#include "join/medium.h"
#include "net/network.h"
#include "net/topology.h"
#include "opt/cost_model.h"
#include "query/analyzer.h"
#include "routing/multi_tree.h"
#include "workload/workload.h"

// Global allocation counter (bench/alloc_audit.h): the zero-allocation
// data plane makes allocs/cycle a tracked perf metric (BENCH_micro.json).
#include "bench/alloc_audit.h"

namespace aspen {
namespace {

const net::Topology& BenchTopology() {
  static const net::Topology topo = *net::Topology::Random(100, 7.0, 42);
  return topo;
}

void BM_NetworkStepWithTraffic(benchmark::State& state) {
  const net::Topology& topo = BenchTopology();
  routing::RoutingTree tree = routing::RoutingTree::Build(topo, 0);
  net::Network net(&topo, {});
  net.set_parent_resolver(&tree);
  // The bench loop is single-threaded: one long sequential phase.
  common::SequentialPhaseScope seq_phase;
  for (auto _ : state) {
    for (net::NodeId u = 1; u < topo.num_nodes(); u += 4) {
      net::Message m;
      m.kind = net::MessageKind::kData;
      m.mode = net::RoutingMode::kTreeToRoot;
      m.origin = u;
      m.dest = 0;
      m.size_bytes = 8;
      benchmark::DoNotOptimize(net.Submit(std::move(m)));
    }
    net.StepUntilQuiet();
  }
  state.SetItemsProcessed(state.iterations() * (topo.num_nodes() / 4));
}
BENCHMARK(BM_NetworkStepWithTraffic);

void BM_MultiTreeExploration(benchmark::State& state) {
  const net::Topology& topo = BenchTopology();
  routing::MultiTreeOptions opts;
  opts.num_trees = static_cast<int>(state.range(0));
  routing::MultiTree multi(&topo, opts);
  routing::IndexedAttribute attr;
  attr.name = "a";
  attr.value_fn = [](net::NodeId id) { return (id * 7) % 12; };
  int idx = *multi.IndexAttribute(attr);
  int source = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(multi.FindMatches(source, idx, 3));
    source = (source + 13) % topo.num_nodes();
  }
}
BENCHMARK(BM_MultiTreeExploration)->Arg(1)->Arg(3);

void BM_ExprEval(benchmark::State& state) {
  using namespace query;
  auto e = Expr::And(
      Expr::Eq(Expr::Attr(Side::kS, kAttrX),
               Expr::Add(Expr::Attr(Side::kT, kAttrY), Expr::Const(5))),
      Expr::Eq(Expr::Mod(Expr::Hash(Expr::Attr(Side::kS, kAttrU)),
                         Expr::Const(2)),
               Expr::Const(0)));
  Tuple s = Schema::Sensor().MakeTuple();
  Tuple t = Schema::Sensor().MakeTuple();
  s[kAttrX] = 9;
  t[kAttrY] = 4;
  for (auto _ : state) {
    s[kAttrU] = (s[kAttrU] + 1) & 0x7;
    benchmark::DoNotOptimize(e->EvalBool(&s, &t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprEval);

void BM_PlaceOnPath(benchmark::State& state) {
  std::vector<net::NodeId> path(state.range(0));
  for (size_t i = 0; i < path.size(); ++i) path[i] = static_cast<int>(i);
  opt::PairCostInputs cost{0.5, 0.5, 0.2, 3};
  auto depth = [](net::NodeId id) { return static_cast<int>(id % 11); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::PlaceOnPath(cost, path, depth));
  }
}
BENCHMARK(BM_PlaceOnPath)->Arg(8)->Arg(32);

void BM_TopologyGeneration(benchmark::State& state) {
  uint64_t seed = 1;
  // range(1) is the target average degree scaled by 10 (benchmark args are
  // integers): 70 -> 7.0 neighbors, 130 -> 13.0.
  const double degree = static_cast<double>(state.range(1)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Topology::Random(
        static_cast<int>(state.range(0)), degree, seed++));
  }
}
// No Unit() override: JsonFileReporter records GetAdjustedRealTime() in the
// declared unit, and the BENCH_micro.json trajectory is tracked in ns.
BENCHMARK(BM_TopologyGeneration)
    ->Args({100, 70})
    ->Args({200, 70})
    ->Args({1000, 70})
    ->Args({10000, 130});

void BM_LinkLossNoOverrides(benchmark::State& state) {
  // The common case: no per-link overrides installed. LinkLoss must answer
  // from one branch — no unordered_map probe per transmission.
  const net::Topology& topo = BenchTopology();
  net::NetworkOptions opts;
  opts.loss_prob = 0.1;
  net::Network net(&topo, opts);
  const int n = topo.num_nodes();
  double acc = 0;
  for (auto _ : state) {
    for (net::NodeId u = 0; u < n; ++u) acc += net.LinkLoss(u, (u + 1) % n);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinkLossNoOverrides);

void BM_LinkLossWithOverrides(benchmark::State& state) {
  // With any override present every lookup pays the hash probe (the
  // scenario-dynamics case); kept as the comparison point.
  const net::Topology& topo = BenchTopology();
  net::NetworkOptions opts;
  opts.loss_prob = 0.1;
  net::Network net(&topo, opts);
  {
    common::SequentialPhaseScope seq_phase;
    net.SetLinkLoss(0, 1, 0.9);
  }
  const int n = topo.num_nodes();
  double acc = 0;
  for (auto _ : state) {
    for (net::NodeId u = 0; u < n; ++u) acc += net.LinkLoss(u, (u + 1) % n);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinkLossWithOverrides);

void BM_FullExperimentCycle(benchmark::State& state) {
  const net::Topology& topo = BenchTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *workload::Workload::MakeQuery1(&topo, sel, 3, 7);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  join::JoinExecutor exec(&wl, opts);
  if (!exec.Initiate().ok()) state.SkipWithError("initiate failed");
  const uint64_t allocs_before = allocaudit::Count();
  const uint64_t bytes_before = exec.network().stats().TotalBytesSent();
  for (auto _ : state) {
    if (!exec.RunCycles(1).ok()) state.SkipWithError("run failed");
  }
  const double cycles = static_cast<double>(state.iterations());
  state.counters["allocs_per_cycle"] = benchmark::Counter(
      static_cast<double>(allocaudit::Count() - allocs_before) / cycles);
  state.counters["bytes_per_cycle"] = benchmark::Counter(
      static_cast<double>(exec.network().stats().TotalBytesSent() -
                          bytes_before) /
      cycles);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullExperimentCycle);

void BM_SampleStage(benchmark::State& state) {
  // The pure per-cycle sample stage in isolation: workload sampling +
  // filter evaluation into the staged slab, no commit/submission. This is
  // exactly the work the pipelined scheduler (pipeline_depth > 1) overlaps
  // with the previous cycle's transmit, so ns/op here bounds the overlap's
  // best-case saving per cycle.
  const net::Topology& topo = BenchTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *workload::Workload::MakeQuery1(&topo, sel, 3, 7);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  join::JoinExecutor exec(&wl, opts);
  if (!exec.Initiate().ok()) state.SkipWithError("initiate failed");
  sim::ShardPhaseParticipant& sp = exec;
  const net::NodeId n = topo.num_nodes();
  sp.ConfigureSampleSlots(1);
  sp.OnSampleBegin(0);
  {
    // First pass sizes the producer cache and slab; keep it out of the
    // timed loop (it happens once per run, at warm-up).
    common::PipelineStageScope stage;
    sp.OnSampleStage(0, 0, 0, 0, n);
  }
  const uint64_t allocs_before = allocaudit::Count();
  int cycle = 1;
  for (auto _ : state) {
    common::PipelineStageScope stage;
    sp.OnSampleStage(cycle++, 0, 0, 0, n);
  }
  state.counters["allocs_per_cycle"] = benchmark::Counter(
      static_cast<double>(allocaudit::Count() - allocs_before) /
      static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleStage);

void BM_PassFiltersOverrides(benchmark::State& state) {
  // Batched filter evaluation with per-node parameter overrides installed —
  // the path a heterogeneous deployment (Section 6 drift scenarios) runs
  // every sample cycle. Every 4th node is overridden so the uniform-params
  // fast path is off for cycles below the switch.
  auto topo = *net::Topology::Grid(100, 100, 2560.0);
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  auto wl = *workload::Workload::MakeQuery1(&topo, sel, 3, 7);
  for (net::NodeId id = 0; id < topo.num_nodes(); id += 4) {
    wl.SetNodeParams(id, {0.25, 0.75, 0.1});
  }
  wl.WarmFilterCache();
  const int n = topo.num_nodes();
  std::vector<net::NodeId> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = i;
  std::vector<uint64_t> s_bits((n + 63) / 64), t_bits((n + 63) / 64);
  const uint64_t allocs_before = allocaudit::Count();
  int cycle = 0;
  for (auto _ : state) {
    wl.PassFilters(ids.data(), n, cycle++, s_bits.data(), t_bits.data());
    benchmark::DoNotOptimize(s_bits.data());
    benchmark::DoNotOptimize(t_bits.data());
  }
  state.counters["allocs_per_call"] = benchmark::Counter(
      static_cast<double>(allocaudit::Count() - allocs_before) /
      static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PassFiltersOverrides);

void BM_SharedMediumCycle(benchmark::State& state) {
  // Two concurrent queries interleaved on one medium, driven by the shared
  // cycle scheduler: the multi-query hot path.
  const net::Topology& topo = BenchTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  auto q1 = *workload::Workload::MakeQuery1(&topo, sel, 3, 7);
  auto q2 = *workload::Workload::MakeQuery2(&topo, sel, 3, 9);
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  net::NetworkOptions shared_opts;
  shared_opts.enable_merging = true;
  join::SharedMedium medium(&topo, shared_opts);
  if (!medium.TryAddQuery(&q1, opts).ok() ||
      !medium.TryAddQuery(&q2, opts).ok()) {
    state.SkipWithError("admission failed");
  }
  if (!medium.InitiateAll().ok()) state.SkipWithError("initiate failed");
  for (auto _ : state) {
    if (!medium.RunCycles(1).ok()) state.SkipWithError("run failed");
  }
  state.SetItemsProcessed(state.iterations() * 2);  // query-cycles
}
BENCHMARK(BM_SharedMediumCycle);

void BM_RunAveraged(benchmark::State& state) {
  // 9-seed repetition batch (the paper's methodology) on the thread pool.
  const net::Topology& topo = BenchTopology();
  workload::SelectivityParams sel{0.5, 0.5, 0.2};
  core::WorkloadFactory factory = [&](uint64_t seed) {
    return workload::Workload::MakeQuery1(&topo, sel, 3, seed);
  };
  join::ExecutorOptions opts;
  opts.algorithm = join::Algorithm::kInnet;
  opts.features = join::InnetFeatures::Cmg();
  opts.assumed = sel;
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto agg = core::RunAveraged(factory, opts, /*sampling_cycles=*/25,
                                 /*runs=*/9, /*seed0=*/1, threads);
    if (!agg.ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(agg);
  }
  state.SetItemsProcessed(state.iterations() * 9);
}
BENCHMARK(BM_RunAveraged)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Console output plus a flat BENCH_micro.json perf-trajectory record.
class JsonFileReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonFileReporter(benchutil::JsonReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      const std::string name = r.benchmark_name();
      report_->Add(name, "ns_per_op", r.GetAdjustedRealTime());
      for (const auto& [key, counter] : r.counters) {
        report_->Add(name, key, counter.value);
      }
    }
  }

 private:
  benchutil::JsonReport* report_;
};

}  // namespace
}  // namespace aspen

int main(int argc, char** argv) {
  aspen::allocaudit::SetCounting(true);  // allocs/cycle is a tracked metric
  // `--smoke` (CI): run every benchmark briefly — catches bench bit-rot and
  // hot-path regressions without a full timing pass.
  const bool smoke = aspen::benchutil::ConsumeSmokeFlag(&argc, argv);
  std::vector<char*> args(argv, argv + argc);
  static char min_time_flag[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time_flag);
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  aspen::benchutil::JsonReport report("BENCH_micro.json");
  aspen::JsonFileReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.Write();
  return 0;
}
